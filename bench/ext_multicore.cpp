// Extension E8 — the paper's stated future work (§VII): "test our models on
// nodes with 8 and 16 cores to extend them".
//
// Sweep cores-per-node for a fixed 16-task job where every task on node 0
// streams to a distinct remote node (the fan conflict grows with core
// count), and report model-vs-substrate E_abs per interconnect. The fan
// degree equals the core count, so this probes the models far beyond the
// 2-core regime they were fitted in.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "graph/schemes.hpp"
#include "models/registry.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);
  const double bytes = parse_size(args.get("size", "20M"));

  print_banner(std::cout,
               "Extension - models on 2/4/8/16-core nodes (SVII future work)");
  std::cout << "  Outgoing fan of degree = cores per node, " << human_bytes(bytes)
            << " messages; cells are E_abs [%] of the paper's model vs the "
               "substrate.\n\n";

  TextTable table({"cores/node", "GigE", "Myrinet", "Infiniband"});
  for (int cores : {2, 4, 8, 16}) {
    std::vector<std::string> row{strformat("%d", cores)};
    for (const auto tech :
         {topo::NetworkTech::kGigabitEthernet, topo::NetworkTech::kMyrinet2000,
          topo::NetworkTech::kInfinibandInfinihost3}) {
      const auto cluster = topo::ClusterSpec::uniform(
          "sweep", cores + 2, cores, topo::calibration_for(tech));
      const auto scheme = graph::schemes::outgoing_fan(cores, bytes);
      const auto model = models::model_for(tech);
      const auto cmp = eval::compare_scheme(scheme, cluster, *model);
      row.push_back(strformat("%.1f", cmp.eabs));
    }
    table.add_row(row);
  }
  bench::emit(args, "ext_multicore", table);
  std::cout
      << "  The fan penalty formulas are linear in the degree, so the models "
         "track the\n  substrate at any core count; on real hardware the "
         "paper expected new effects\n  (memory bus saturation) to appear — "
         "the substrate's duplex bus only models the NIC.\n";

  // Second sweep: a duplex-loaded node (cores-1 outgoing + 1 incoming),
  // the fig-2 S5 pattern scaled up.
  std::cout << "\n  Duplex variant (cores-1 outgoing + 1 incoming at node 0):\n";
  TextTable table2({"cores/node", "GigE", "Myrinet", "Infiniband"});
  for (int cores : {2, 4, 8, 16}) {
    std::vector<std::string> row{strformat("%d", cores)};
    for (const auto tech :
         {topo::NetworkTech::kGigabitEthernet, topo::NetworkTech::kMyrinet2000,
          topo::NetworkTech::kInfinibandInfinihost3}) {
      const auto cluster = topo::ClusterSpec::uniform(
          "sweep", cores + 3, cores, topo::calibration_for(tech));
      graph::CommGraph scheme;
      for (int i = 1; i < cores; ++i)
        scheme.add(strformat("o%d", i), 0, i, bytes);
      scheme.add("in", cores, 0, bytes);
      const auto model = models::model_for(tech);
      const auto cmp = eval::compare_scheme(scheme, cluster, *model);
      row.push_back(strformat("%.1f", cmp.eabs));
    }
    table2.add_row(row);
  }
  bench::emit(args, "ext_multicore_duplex", table2);
  std::cout << "  The same-direction models ignore the duplex bus, so their "
               "error grows with\n  the income/outgo load — the gap the "
               "paper's future work was after.\n";
  return 0;
}
