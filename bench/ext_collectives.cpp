// Extension E9 — collective algorithms under bandwidth-sharing models.
//
// The paper's HPL uses a ring broadcast precisely because it avoids
// conflicts; this bench quantifies that choice by replaying the classic
// collective algorithms through the simulator on each interconnect model
// and on the substrate. Binomial trees finish in log p rounds but their
// concurrent sends conflict on SMP nodes; the ring never conflicts but pays
// p-1 serial hops.
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "models/registry.hpp"
#include "sim/collectives.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

double simulate(const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
                const flowsim::RateProvider& provider) {
  const auto placement = sim::make_placement(
      sim::SchedulingPolicy::kRoundRobinNode, cluster, trace.num_tasks());
  return sim::run_simulation(trace, cluster, placement, provider).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int p = static_cast<int>(args.get_int("tasks", 16));
  const double bytes = parse_size(args.get("size", "4M"));

  print_banner(std::cout, "Extension - collectives under sharing models");
  std::cout << "  " << p << " tasks, " << human_bytes(bytes)
            << " payload; makespan per algorithm (model vs substrate).\n";

  struct Algo {
    std::string name;
    std::function<void(sim::AppTrace&)> build;
  };
  const std::vector<Algo> algos = {
      {"ring broadcast",
       [&](sim::AppTrace& t) { sim::append_ring_broadcast(t, 0, bytes); }},
      {"binomial broadcast",
       [&](sim::AppTrace& t) { sim::append_binomial_broadcast(t, 0, bytes); }},
      {"scatter",
       [&](sim::AppTrace& t) { sim::append_scatter(t, 0, bytes); }},
      {"gather", [&](sim::AppTrace& t) { sim::append_gather(t, 0, bytes); }},
      {"ring allreduce",
       [&](sim::AppTrace& t) { sim::append_ring_allreduce(t, bytes); }},
      {"all-to-all",
       [&](sim::AppTrace& t) { sim::append_all_to_all(t, bytes / p); }},
  };

  for (const auto tech :
       {topo::NetworkTech::kGigabitEthernet, topo::NetworkTech::kMyrinet2000,
        topo::NetworkTech::kInfinibandInfinihost3}) {
    const auto cluster =
        topo::ClusterSpec::uniform("coll", p, 2, topo::calibration_for(tech));
    std::shared_ptr<const models::PenaltyModel> model =
        models::model_for(tech);
    const sim::ModelRateProvider model_provider(model, cluster.network());
    const flowsim::FluidRateProvider fluid_provider(cluster.network());

    TextTable table({"algorithm", "model makespan", "substrate makespan",
                     "ratio"});
    for (const auto& algo : algos) {
      sim::AppTrace trace(p);
      algo.build(trace);
      const double tp = simulate(trace, cluster, model_provider);
      const double tm = simulate(trace, cluster, fluid_provider);
      table.add_row({algo.name, human_seconds(tp), human_seconds(tm),
                     strformat("%.3f", tp / tm)});
    }
    std::cout << "\n  " << to_string(tech) << ":\n";
    bench::emit(args, "ext_collectives_" + to_string(tech), table);
  }
  std::cout << "\n  Reading: the ring broadcast is conflict-free (ratio "
               "1.00); tree/scatter shapes\n  stress the models the way "
               "fig-2's fans do.\n";
  return 0;
}
