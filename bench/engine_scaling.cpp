// Engine event-loop scaling: full vs incremental component-scoped rate
// refresh (sim::RefreshMode) crossed with heap vs scan next-event selection
// (sim::QueueMode, the core::EventQueue finish-time index vs the legacy
// per-event linear scans — docs/PERFORMANCE.md).
//
// Scenario: a sparse schedule on N nodes — per round, a seeded random
// perfect matching where every node either sends or receives exactly one
// rendezvous message, rounds separated by barriers. The conflict graph of
// each round is N/2 disjoint pairs, the regime where a full re-solve on
// every event does maximal wasted work and the component-scoped solver
// touches O(1) communications per event — leaving the per-event scans as
// the dominant cost, which the indexed heap removes.
//
// Emits BENCH_engine.json (schema_version 2, docs/PERFORMANCE.md) so the
// repo keeps a machine-readable perf trajectory: one row per
// provider x node count x queue mode, each echoing the RNG seed and the
// refresh mode it measured so a baseline is reproducible from the file
// alone. Node counts above --max-full-nodes run the incremental path only
// (the full solve becomes quadratic-plus and would dominate the bench's
// wall time); their full_ms/speedup fields are null. Every heap cell with a
// full measurement also replays the schedule in RefreshMode::kCrossCheck —
// per-event rate equivalence plus the heap-order-equals-scan-order
// assertion — and every scan cell's completion times must be bit-identical
// to its heap twin's (the bench exits non-zero otherwise).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "flowsim/fluid_network.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

sim::AppTrace sparse_matching_trace(int nodes, int rounds, double bytes,
                                    uint64_t seed) {
  sim::AppTrace trace(nodes);
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  for (int r = 0; r < rounds; ++r) {
    // Seeded Fisher-Yates: a fresh perfect matching every round.
    for (int i = nodes - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.below(static_cast<uint64_t>(i + 1)));
      std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    }
    for (int p = 0; p + 1 < nodes; p += 2) {
      const sim::TaskId src = order[static_cast<size_t>(p)];
      const sim::TaskId dst = order[static_cast<size_t>(p + 1)];
      trace.push(src, sim::Event::send(dst, bytes));
      trace.push(dst, sim::Event::recv(src, bytes));
    }
    trace.push_barrier_all();
  }
  return trace;
}

struct Run {
  double wall_ms = 0.0;
  sim::SimResult result;
};

Run timed_run(const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
              const sim::Placement& placement,
              const flowsim::RateProvider& provider, sim::RefreshMode mode,
              sim::QueueMode queue) {
  Run out;
  const auto t0 = std::chrono::steady_clock::now();
  sim::EngineConfig cfg;
  cfg.refresh = mode;
  cfg.queue = queue;
  out.result = sim::run_simulation(trace, cluster, placement, provider, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return out;
}

/// Max relative difference over per-communication finish times + makespan.
double max_rel_err(const sim::SimResult& a, const sim::SimResult& b) {
  BWS_CHECK(a.comms.size() == b.comms.size(),
            "refresh modes produced different communication counts");
  double worst = 0.0;
  const auto rel = [](double x, double y) {
    const double scale = std::max(std::abs(x), std::abs(y));
    return scale == 0.0 ? 0.0 : std::abs(x - y) / scale;
  };
  for (size_t i = 0; i < a.comms.size(); ++i)
    worst = std::max(worst, rel(a.comms[i].finish, b.comms[i].finish));
  worst = std::max(worst, rel(a.makespan, b.makespan));
  return worst;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return strformat("%.9g", v);
}

void usage(const char* prog) {
  std::cout
      << "usage: " << prog << " [options]\n"
      << "  --nodes N,N,...       node counts (default 64,128,256,512,1024,"
         "2048,4096,8192,16384)\n"
      << "  --rounds R            matching rounds per scenario (default 3)\n"
      << "  --bytes B             message size in bytes (default 4000000)\n"
      << "  --seed S              matching seed (default 1)\n"
      << "  --providers LIST      fluid and/or gige (default fluid)\n"
      << "  --queues LIST         heap and/or scan next-event selection\n"
      << "                        (default heap,scan; scan rows must be\n"
      << "                        bit-identical to their heap twin)\n"
      << "  --max-full-nodes N    largest size timing the full refresh and\n"
      << "                        running the cross-check (default 1024)\n"
      << "  --out PATH            JSON output (default BENCH_engine.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    usage(args.program().c_str());
    return 0;
  }
  const auto unknown = args.unknown_flags({"nodes", "rounds", "bytes", "seed",
                                           "providers", "queues",
                                           "max-full-nodes", "out", "help"});
  if (!unknown.empty()) {
    std::cerr << "error: unknown flag --" << unknown.front() << "\n";
    usage(args.program().c_str());
    return 2;
  }

  const std::string nodes_list =
      args.get("nodes", "64,128,256,512,1024,2048,4096,8192,16384");
  const int rounds = static_cast<int>(args.get_int("rounds", 3));
  const double bytes = args.get_double("bytes", 4e6);
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const long max_full = args.get_int("max-full-nodes", 1024);
  const std::string out_path = args.get("out", "BENCH_engine.json");
  const std::string providers = args.get("providers", "fluid");
  const std::string queues = args.get("queues", "heap,scan");

  std::vector<int> sizes;
  for (const auto& tok : split(nodes_list, ','))
    sizes.push_back(static_cast<int>(parse_size(trim(tok))));
  std::vector<std::string> provider_names = split(providers, ',');
  bool with_heap = false;
  bool with_scan = false;
  for (const auto& q : split(queues, ',')) {
    if (trim(q) == "heap") {
      with_heap = true;
    } else if (trim(q) == "scan") {
      with_scan = true;
    } else {
      std::cerr << "error: unknown queue mode '" << trim(q) << "'\n";
      return 2;
    }
  }

  const auto cal = topo::gigabit_ethernet_calibration();
  std::string rows;
  bool all_equivalent = true;

  // One emitted row per provider x node count x queue mode.
  struct Row {
    const char* queue = "";
    double makespan = 0.0;
    double incremental_ms = 0.0;
    double full_ms = -1.0;           // < 0 -> null
    double speedup = -1.0;           // < 0 -> null
    double max_rel_err = -1.0;       // full vs incremental; < 0 -> null
    double queue_rel_err = -1.0;     // scan vs heap twin; < 0 -> null
    bool crosscheck = false;
  };

  std::printf("%-8s %-7s %-5s %10s %14s %9s %12s %13s  %s\n", "provider",
              "nodes", "queue", "full_ms", "incremental_ms", "speedup",
              "max_rel_err", "queue_rel_err", "crosscheck");
  for (const auto& pname : provider_names) {
    const flowsim::FluidRateProvider fluid(cal);
    std::shared_ptr<const models::PenaltyModel> model;
    std::unique_ptr<sim::ModelRateProvider> model_provider;
    const flowsim::RateProvider* provider = &fluid;
    if (pname == "gige") {
      model = models::make_model("gige");
      model_provider = std::make_unique<sim::ModelRateProvider>(model, cal);
      provider = model_provider.get();
    } else {
      BWS_CHECK(pname == "fluid", "unknown provider '" + pname + "'");
    }

    for (const int n : sizes) {
      BWS_CHECK(n >= 2, "node counts must be at least 2");
      const auto trace = sparse_matching_trace(n, rounds, bytes, seed);
      const auto cluster = topo::ClusterSpec::uniform("bench", n, 1, cal);
      const auto placement = sim::make_placement(
          sim::SchedulingPolicy::kRoundRobinNode, cluster, n);

      const bool with_full = n <= max_full;
      std::vector<Row> cell_rows;

      // Time the full refresh against `inc`, record the speedup and the
      // full-vs-incremental divergence, then replay in kCrossCheck — the
      // per-event rate equivalence (plus, under kHeap, the
      // heap-order-equals-scan-order assertion) throws and fails the bench
      // on any divergence.
      const auto measure_full = [&](Row& row, const Run& inc,
                                    sim::QueueMode queue) {
        const Run full = timed_run(trace, cluster, placement, *provider,
                                   sim::RefreshMode::kFull, queue);
        row.full_ms = full.wall_ms;
        row.speedup = inc.wall_ms > 0.0 ? full.wall_ms / inc.wall_ms : -1.0;
        row.max_rel_err = max_rel_err(full.result, inc.result);
        if (row.max_rel_err > 1e-9) all_equivalent = false;
        (void)timed_run(trace, cluster, placement, *provider,
                        sim::RefreshMode::kCrossCheck, queue);
        row.crosscheck = true;
      };

      const Run* heap_inc = nullptr;
      Run heap_run;
      if (with_heap) {
        heap_run = timed_run(trace, cluster, placement, *provider,
                             sim::RefreshMode::kIncremental,
                             sim::QueueMode::kHeap);
        heap_inc = &heap_run;
        Row row;
        row.queue = "heap";
        row.makespan = heap_run.result.makespan;
        row.incremental_ms = heap_run.wall_ms;
        if (with_full) measure_full(row, heap_run, sim::QueueMode::kHeap);
        cell_rows.push_back(row);
      }
      if (with_scan) {
        const Run scan = timed_run(trace, cluster, placement, *provider,
                                   sim::RefreshMode::kIncremental,
                                   sim::QueueMode::kScan);
        Row row;
        row.queue = "scan";
        row.makespan = scan.result.makespan;
        row.incremental_ms = scan.wall_ms;
        if (heap_inc != nullptr) {
          // The two selection strategies run identical arithmetic in an
          // identical order, so their completion times must be bit-identical.
          row.queue_rel_err = max_rel_err(heap_inc->result, scan.result);
          if (row.queue_rel_err != 0.0) all_equivalent = false;
        } else if (with_full) {
          // No heap twin to compare against (--queues scan): validate the
          // scan run against the full refresh itself, like schema v1 did,
          // so a scan-only invocation still can't pass vacuously.
          measure_full(row, scan, sim::QueueMode::kScan);
        }
        cell_rows.push_back(row);
      }

      for (const Row& row : cell_rows) {
        const bool has_full = row.full_ms >= 0.0;
        std::printf(
            "%-8s %-7d %-5s %10s %14.3f %9s %12s %13s  %s\n", pname.c_str(),
            n, row.queue,
            has_full ? strformat("%.3f", row.full_ms).c_str() : "-",
            row.incremental_ms,
            has_full ? strformat("%.2fx", row.speedup).c_str() : "-",
            has_full ? strformat("%.3g", row.max_rel_err).c_str() : "-",
            row.queue_rel_err >= 0.0
                ? strformat("%.3g", row.queue_rel_err).c_str()
                : "-",
            row.crosscheck ? "ok" : "skipped");
        std::fflush(stdout);

        if (!rows.empty()) rows += ",";
        rows += strformat(
            "\n    {\"provider\": \"%s\", \"nodes\": %d, "
            "\"comms_per_round\": %d, \"rounds\": %d, \"seed\": %llu, "
            "\"queue\": \"%s\", \"refresh\": \"incremental\", "
            "\"makespan\": %s, \"full_ms\": %s, \"incremental_ms\": %s, "
            "\"speedup\": %s, \"max_rel_err\": %s, \"queue_rel_err\": %s, "
            "\"crosscheck\": %s}",
            pname.c_str(), n, n / 2, rounds,
            static_cast<unsigned long long>(seed), row.queue,
            json_num(row.makespan).c_str(),
            row.full_ms >= 0.0 ? json_num(row.full_ms).c_str() : "null",
            json_num(row.incremental_ms).c_str(),
            row.speedup >= 0.0 ? json_num(row.speedup).c_str() : "null",
            row.max_rel_err >= 0.0 ? json_num(row.max_rel_err).c_str()
                                   : "null",
            row.queue_rel_err >= 0.0 ? json_num(row.queue_rel_err).c_str()
                                     : "null",
            row.crosscheck ? "true" : "false");
      }
    }
  }

  std::string nodes_json;
  for (const int n : sizes)
    nodes_json += strformat(nodes_json.empty() ? "%d" : ", %d", n);
  std::string providers_json;
  for (const auto& pname : provider_names) {
    if (!providers_json.empty()) providers_json += ", ";
    providers_json += "\"" + pname + "\"";
  }
  std::string queues_json;
  if (with_heap) queues_json += "\"heap\"";
  if (with_scan) queues_json += queues_json.empty() ? "\"scan\"" : ", \"scan\"";

  const std::string json = strformat(
      "{\n  \"bench\": \"engine_scaling\",\n  \"schema_version\": 2,\n"
      "  \"config\": {\"rounds\": %d, \"bytes\": %s, \"seed\": %llu, "
      "\"max_full_nodes\": %ld, \"nodes\": [%s], \"providers\": [%s], "
      "\"queues\": [%s]},\n  \"results\": [%s\n  ]\n}\n",
      rounds, json_num(bytes).c_str(),
      static_cast<unsigned long long>(seed), max_full, nodes_json.c_str(),
      providers_json.c_str(), queues_json.c_str(), rows.c_str());
  util::write_text_file(out_path, json);
  std::cout << "  [json written to " << out_path << "]\n";

  if (!all_equivalent) {
    std::cerr << "error: refresh modes or queue modes diverged (full vs "
                 "incremental beyond 1e-9 relative, or scan not "
                 "bit-identical to heap)\n";
    return 1;
  }
  return 0;
}
