// Engine event-loop scaling: full vs incremental component-scoped rate
// refresh (sim::RefreshMode) crossed with heap vs scan next-event selection
// (sim::QueueMode, the core::EventQueue finish-time index vs the legacy
// per-event linear scans) crossed with serial vs parallel component solving
// (sim::SolveMode, the ThreadPool-backed flush — docs/PERFORMANCE.md).
//
// Scenario: a sparse schedule on N nodes — per round, a seeded random
// perfect matching where every node either sends or receives exactly one
// rendezvous message, rounds separated by barriers. The conflict graph of
// each round is N/2 disjoint pairs, the regime where a full re-solve on
// every event does maximal wasted work and the component-scoped solver
// touches O(1) communications per event — and where each round's release
// flushes N/2 disjoint dirty components at once, the widest batch the
// parallel solver can fan out.
//
// A --churn axis (events/s, default 0) scripts seeded node join/leave/fail
// events onto every replay (sim/scenario.hpp): failures abort in-flight
// transfers and dirty their components, so churned rows measure the
// incremental/parallel solver under membership events instead of assuming
// the static-cluster numbers transfer.
//
// Emits BENCH_engine.json (schema_version 5, docs/PERFORMANCE.md) so the
// repo keeps a machine-readable perf trajectory: one row per
// provider x node count x churn rate x queue mode x solve mode, each
// echoing the RNG seed, the refresh mode and the thread count it measured
// so a baseline is reproducible from the file alone. Serial rows also carry
// allocation counters (util::alloc_count()): alloc_total over the timed
// replay, and alloc_per_event — the allocation count delta between the
// R-round replay and a warmed 1-round twin, divided by the completed-comm
// delta. With the fluid provider the steady-state event loop is
// allocation-free, so the per-event figure must stay ~0 (CI gates it);
// model providers (gige) go through the allocating rates() fallback and are
// reported but exempt. Node counts above --max-full-nodes run
// the incremental path only (the full solve becomes quadratic-plus and
// would dominate the bench's wall time); their full_ms/speedup fields are
// null. Scan rows stop above --max-scan-nodes (the per-event scans are
// quadratic too). Every heap cell with a full measurement also replays the
// schedule in RefreshMode::kCrossCheck — per-event rate equivalence plus
// the heap-order-equals-scan-order assertion, and for parallel rows the
// parallel-vs-serial per-component oracle — and the bench exits non-zero
// if any scan row is not bit-identical to its heap twin or any parallel
// row is not bit-identical to its serial twin.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "flowsim/fluid_network.hpp"
#include "graph/generator.hpp"
#include "models/registry.hpp"
#include "sim/engine.hpp"
#include "sim/rate_model.hpp"
#include "sim/schedule.hpp"
#include "topo/cluster.hpp"
#include "util/alloc_counter.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace bwshare;

sim::AppTrace sparse_matching_trace(int nodes, int rounds, double bytes,
                                    uint64_t seed) {
  sim::AppTrace trace(nodes);
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  for (int r = 0; r < rounds; ++r) {
    // Seeded Fisher-Yates: a fresh perfect matching every round.
    for (int i = nodes - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.below(static_cast<uint64_t>(i + 1)));
      std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    }
    for (int p = 0; p + 1 < nodes; p += 2) {
      const sim::TaskId src = order[static_cast<size_t>(p)];
      const sim::TaskId dst = order[static_cast<size_t>(p + 1)];
      trace.push(src, sim::Event::send(dst, bytes));
      trace.push(dst, sim::Event::recv(src, bytes));
    }
    trace.push_barrier_all();
  }
  return trace;
}

struct Run {
  double wall_ms = 0.0;
  uint64_t allocs = 0;  // global operator-new count during the replay
  sim::SimResult result;
};

Run timed_run(const sim::AppTrace& trace, const topo::ClusterSpec& cluster,
              const sim::Placement& placement,
              const flowsim::RateProvider& provider,
              const sim::Scenario& scenario, sim::RefreshMode mode,
              sim::QueueMode queue,
              sim::SolveMode solve = sim::SolveMode::kSerial,
              util::ThreadPool* pool = nullptr) {
  Run out;
  const uint64_t allocs0 = util::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  sim::EngineConfig cfg;
  cfg.refresh = mode;
  cfg.queue = queue;
  cfg.solve = solve;
  cfg.solve_pool = pool;
  out.result =
      sim::run_simulation(trace, cluster, placement, provider, scenario, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  out.allocs = util::alloc_count() - allocs0;
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return out;
}

/// Max relative difference over per-communication finish times + makespan.
double max_rel_err(const sim::SimResult& a, const sim::SimResult& b) {
  BWS_CHECK(a.comms.size() == b.comms.size(),
            "engine configurations produced different communication counts");
  double worst = 0.0;
  const auto rel = [](double x, double y) {
    const double scale = std::max(std::abs(x), std::abs(y));
    return scale == 0.0 ? 0.0 : std::abs(x - y) / scale;
  };
  for (size_t i = 0; i < a.comms.size(); ++i)
    worst = std::max(worst, rel(a.comms[i].finish, b.comms[i].finish));
  worst = std::max(worst, rel(a.makespan, b.makespan));
  return worst;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return strformat("%.9g", v);
}

void usage(const char* prog) {
  std::cout
      << "usage: " << prog << " [options]\n"
      << "  --nodes N,N,...       node counts (default 64,128,256,512,1024,"
         "2048,4096,8192,16384,32768,65536)\n"
      << "  --rounds R            matching rounds per scenario (default 3)\n"
      << "  --bytes B             message size in bytes (default 4000000)\n"
      << "  --seed S              matching seed (default 1)\n"
      << "  --churn LIST          membership-churn rates in events/s of\n"
      << "                        simulated time (default 0; each nonzero\n"
      << "                        rate adds a row set replaying under a\n"
      << "                        seeded join/leave/fail script)\n"
      << "  --providers LIST      fluid and/or gige (default fluid)\n"
      << "  --queues LIST         heap and/or scan next-event selection\n"
      << "                        (default heap,scan; scan rows must be\n"
      << "                        bit-identical to their heap twin)\n"
      << "  --solve LIST          serial and/or parallel component solving\n"
      << "                        (default serial,parallel; parallel rows\n"
      << "                        must be bit-identical to their serial\n"
      << "                        twin)\n"
      << "  --threads T           pool size for parallel rows (default 0 =\n"
      << "                        hardware threads)\n"
      << "  --max-full-nodes N    largest size timing the full refresh and\n"
      << "                        running the cross-check (default 1024)\n"
      << "  --max-scan-nodes N    largest size running scan rows (default\n"
      << "                        16384; the per-event scans are quadratic)\n"
      << "  --out PATH            JSON output (default BENCH_engine.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    usage(args.program().c_str());
    return 0;
  }
  const auto unknown = args.unknown_flags(
      {"nodes", "rounds", "bytes", "seed", "churn", "providers", "queues",
       "solve", "threads", "max-full-nodes", "max-scan-nodes", "out",
       "help"});
  if (!unknown.empty()) {
    std::cerr << "error: unknown flag --" << unknown.front() << "\n";
    usage(args.program().c_str());
    return 2;
  }

  const std::string nodes_list = args.get(
      "nodes", "64,128,256,512,1024,2048,4096,8192,16384,32768,65536");
  const int rounds = static_cast<int>(args.get_int("rounds", 3));
  const double bytes = args.get_double("bytes", 4e6);
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const long max_full = args.get_int("max-full-nodes", 1024);
  const long max_scan = args.get_int("max-scan-nodes", 16384);
  const std::string out_path = args.get("out", "BENCH_engine.json");
  const std::string providers = args.get("providers", "fluid");
  const std::string queues = args.get("queues", "heap,scan");
  const std::string solves = args.get("solve", "serial,parallel");
  const int threads_flag = static_cast<int>(args.get_int("threads", 0));

  std::vector<int> sizes;
  for (const auto& tok : split(nodes_list, ','))
    sizes.push_back(static_cast<int>(parse_size(trim(tok))));
  std::vector<double> churn_rates;
  for (const auto& tok : split(args.get("churn", "0"), ',')) {
    char* end = nullptr;
    const std::string text{trim(tok)};
    const double rate = std::strtod(text.c_str(), &end);
    BWS_CHECK(end != text.c_str() && *end == '\0' && rate >= 0.0,
              "--churn expects comma-separated non-negative rates");
    churn_rates.push_back(rate);
  }
  std::vector<std::string> provider_names = split(providers, ',');
  bool with_heap = false;
  bool with_scan = false;
  for (const auto& q : split(queues, ',')) {
    if (trim(q) == "heap") {
      with_heap = true;
    } else if (trim(q) == "scan") {
      with_scan = true;
    } else {
      std::cerr << "error: unknown queue mode '" << trim(q) << "'\n";
      return 2;
    }
  }
  bool with_serial = false;
  bool with_parallel = false;
  for (const auto& s : split(solves, ',')) {
    if (trim(s) == "serial") {
      with_serial = true;
    } else if (trim(s) == "parallel") {
      with_parallel = true;
    } else {
      std::cerr << "error: unknown solve mode '" << trim(s) << "'\n";
      return 2;
    }
  }

  // One shared pool for every parallel row — the injection pattern the
  // engine documents for concurrent replays (sweep cells).
  const int pool_threads =
      threads_flag > 0 ? threads_flag : util::ThreadPool::hardware_threads();
  std::unique_ptr<util::ThreadPool> pool;
  if (with_parallel) pool = std::make_unique<util::ThreadPool>(pool_threads);

  const auto cal = topo::gigabit_ethernet_calibration();
  std::string rows;
  bool all_equivalent = true;

  // One emitted row per provider x node count x churn rate x queue mode x
  // solve mode.
  struct Row {
    const char* queue = "";
    const char* solve = "serial";
    int threads = 1;
    double churn = 0.0;
    size_t aborted = 0;
    double makespan = 0.0;
    double incremental_ms = 0.0;
    double full_ms = -1.0;           // < 0 -> null
    double speedup = -1.0;           // < 0 -> null
    double max_rel_err = -1.0;       // full vs incremental; < 0 -> null
    double queue_rel_err = -1.0;     // scan vs heap twin; < 0 -> null
    double solve_rel_err = -1.0;     // parallel vs serial twin; < 0 -> null
    double solve_speedup = -1.0;     // serial_ms / parallel_ms; < 0 -> null
    double alloc_total = -1.0;       // operator-new count; < 0 -> null
    double alloc_per_event = -1.0;   // steady-state allocs/comm; < 0 -> null
    bool crosscheck = false;
  };

  std::printf(
      "%-8s %-7s %-6s %-5s %-8s %10s %14s %9s %12s %13s %13s %13s %11s %8s"
      "  %s\n",
      "provider", "nodes", "churn", "queue", "solve", "full_ms",
      "incremental_ms", "speedup", "max_rel_err", "queue_rel_err",
      "solve_rel_err", "solve_speedup", "alloc_total", "alloc/ev",
      "crosscheck");
  for (const auto& pname : provider_names) {
    const flowsim::FluidRateProvider fluid(cal);
    std::shared_ptr<const models::PenaltyModel> model;
    std::unique_ptr<sim::ModelRateProvider> model_provider;
    const flowsim::RateProvider* provider = &fluid;
    if (pname == "gige") {
      model = models::make_model("gige");
      model_provider = std::make_unique<sim::ModelRateProvider>(model, cal);
      provider = model_provider.get();
    } else {
      BWS_CHECK(pname == "fluid", "unknown provider '" + pname + "'");
    }

    for (const int n : sizes) {
      BWS_CHECK(n >= 2, "node counts must be at least 2");
      const auto trace = sparse_matching_trace(n, rounds, bytes, seed);
      // One-round twin of the same schedule: the (R-round - 1-round)
      // allocation delta cancels per-replay setup costs (engine state,
      // scratch growth), leaving the steady-state per-event count.
      const auto trace1 = sparse_matching_trace(n, 1, bytes, seed);
      const auto cluster = topo::ClusterSpec::uniform("bench", n, 1, cal);
      const auto placement = sim::make_placement(
          sim::SchedulingPolicy::kRoundRobinNode, cluster, n);

      const bool with_full = n <= max_full;
      std::vector<Row> cell_rows;

      for (const double churn : churn_rates) {
      sim::Scenario scenario;
      if (churn > 0.0) {
        graph::ChurnSpec churn_spec;
        churn_spec.rate = churn;
        churn_spec.nodes = n;
        scenario.churn = graph::generate_churn(churn_spec, seed);
      }

      // Time the full refresh against `inc`, record the speedup and the
      // full-vs-incremental divergence, then replay in kCrossCheck — the
      // per-event rate equivalence (plus, under kHeap, the
      // heap-order-equals-scan-order assertion) throws and fails the bench
      // on any divergence.
      const auto measure_full = [&](Row& row, const Run& inc,
                                    sim::QueueMode queue) {
        const Run full =
            timed_run(trace, cluster, placement, *provider, scenario,
                      sim::RefreshMode::kFull, queue);
        row.full_ms = full.wall_ms;
        row.speedup = inc.wall_ms > 0.0 ? full.wall_ms / inc.wall_ms : -1.0;
        row.max_rel_err = max_rel_err(full.result, inc.result);
        if (row.max_rel_err > 1e-9) all_equivalent = false;
        (void)timed_run(trace, cluster, placement, *provider, scenario,
                        sim::RefreshMode::kCrossCheck, queue);
        row.crosscheck = true;
      };

      // Serial and parallel incremental runs for one queue mode: parallel
      // must be bit-identical to serial (solve_rel_err exactly 0), and the
      // kCrossCheck replay of a parallel row additionally runs the
      // per-component parallel-vs-serial oracle inside the engine.
      const auto run_queue_cell = [&](sim::QueueMode queue,
                                      const char* queue_name,
                                      const Run* heap_serial) -> Run {
        Run serial;
        Run one;
        if (with_serial || with_parallel) {
          // Warm the thread-local solve scratch/arena, then measure the
          // 1-round twin so both it and the R-round replay below run warm —
          // their allocation delta is then pure steady-state work.
          (void)timed_run(trace1, cluster, placement, *provider, scenario,
                          sim::RefreshMode::kIncremental, queue);
          one = timed_run(trace1, cluster, placement, *provider, scenario,
                          sim::RefreshMode::kIncremental, queue);
          // The serial run doubles as the parallel rows' oracle baseline,
          // so it runs whenever any solve mode is requested.
          serial = timed_run(trace, cluster, placement, *provider, scenario,
                             sim::RefreshMode::kIncremental, queue);
        }
        if (with_serial) {
          Row row;
          row.queue = queue_name;
          row.solve = "serial";
          row.threads = 1;
          row.churn = churn;
          row.aborted = serial.result.aborted_comms;
          row.makespan = serial.result.makespan;
          row.incremental_ms = serial.wall_ms;
          row.alloc_total = static_cast<double>(serial.allocs);
          const double comm_delta =
              static_cast<double>(serial.result.comms.size()) -
              static_cast<double>(one.result.comms.size());
          if (comm_delta > 0.0)
            row.alloc_per_event =
                (static_cast<double>(serial.allocs) -
                 static_cast<double>(one.allocs)) /
                comm_delta;
          if (heap_serial != nullptr) {
            // The two selection strategies run identical arithmetic in an
            // identical order: completion times must be bit-identical.
            row.queue_rel_err = max_rel_err(heap_serial->result,
                                            serial.result);
            if (row.queue_rel_err != 0.0) all_equivalent = false;
          } else if (with_full) {
            measure_full(row, serial, queue);
          }
          cell_rows.push_back(row);
        }
        if (with_parallel) {
          const Run parallel = timed_run(
              trace, cluster, placement, *provider, scenario,
              sim::RefreshMode::kIncremental, queue,
              sim::SolveMode::kParallel, pool.get());
          Row row;
          row.queue = queue_name;
          row.solve = "parallel";
          row.threads = pool_threads;
          row.churn = churn;
          row.aborted = parallel.result.aborted_comms;
          row.makespan = parallel.result.makespan;
          row.incremental_ms = parallel.wall_ms;
          row.solve_rel_err = max_rel_err(serial.result, parallel.result);
          if (row.solve_rel_err != 0.0) all_equivalent = false;
          row.solve_speedup = parallel.wall_ms > 0.0
                                  ? serial.wall_ms / parallel.wall_ms
                                  : -1.0;
          if (with_full) {
            (void)timed_run(trace, cluster, placement, *provider, scenario,
                            sim::RefreshMode::kCrossCheck, queue,
                            sim::SolveMode::kParallel, pool.get());
            row.crosscheck = true;
          }
          cell_rows.push_back(row);
        }
        return serial;
      };

      Run heap_serial;
      bool have_heap_serial = false;
      if (with_heap) {
        heap_serial = run_queue_cell(sim::QueueMode::kHeap, "heap", nullptr);
        have_heap_serial = with_serial || with_parallel;
      }
      if (with_scan && n <= max_scan) {
        run_queue_cell(sim::QueueMode::kScan, "scan",
                       have_heap_serial ? &heap_serial : nullptr);
      }
      }  // churn axis

      for (const Row& row : cell_rows) {
        const bool has_full = row.full_ms >= 0.0;
        std::printf(
            "%-8s %-7d %-6s %-5s %-8s %10s %14.3f %9s %12s %13s %13s %13s"
            " %11s %8s  %s\n",
            pname.c_str(), n, strformat("%g", row.churn).c_str(), row.queue,
            row.solve,
            has_full ? strformat("%.3f", row.full_ms).c_str() : "-",
            row.incremental_ms,
            has_full ? strformat("%.2fx", row.speedup).c_str() : "-",
            has_full ? strformat("%.3g", row.max_rel_err).c_str() : "-",
            row.queue_rel_err >= 0.0
                ? strformat("%.3g", row.queue_rel_err).c_str()
                : "-",
            row.solve_rel_err >= 0.0
                ? strformat("%.3g", row.solve_rel_err).c_str()
                : "-",
            row.solve_speedup >= 0.0
                ? strformat("%.2fx", row.solve_speedup).c_str()
                : "-",
            row.alloc_total >= 0.0
                ? strformat("%.0f", row.alloc_total).c_str()
                : "-",
            row.alloc_per_event >= 0.0
                ? strformat("%.3g", row.alloc_per_event).c_str()
                : "-",
            row.crosscheck ? "ok" : "skipped");
        std::fflush(stdout);

        if (!rows.empty()) rows += ",";
        rows += strformat(
            "\n    {\"provider\": \"%s\", \"nodes\": %d, "
            "\"comms_per_round\": %d, \"rounds\": %d, \"seed\": %llu, "
            "\"churn_rate\": %s, \"aborted\": %zu, "
            "\"queue\": \"%s\", \"solve\": \"%s\", \"threads\": %d, "
            "\"refresh\": \"incremental\", "
            "\"makespan\": %s, \"full_ms\": %s, \"incremental_ms\": %s, "
            "\"speedup\": %s, \"max_rel_err\": %s, \"queue_rel_err\": %s, "
            "\"solve_rel_err\": %s, \"solve_speedup\": %s, "
            "\"alloc_total\": %s, \"alloc_per_event\": %s, "
            "\"crosscheck\": %s}",
            pname.c_str(), n, n / 2, rounds,
            static_cast<unsigned long long>(seed),
            json_num(row.churn).c_str(), row.aborted, row.queue, row.solve,
            row.threads, json_num(row.makespan).c_str(),
            row.full_ms >= 0.0 ? json_num(row.full_ms).c_str() : "null",
            json_num(row.incremental_ms).c_str(),
            row.speedup >= 0.0 ? json_num(row.speedup).c_str() : "null",
            row.max_rel_err >= 0.0 ? json_num(row.max_rel_err).c_str()
                                   : "null",
            row.queue_rel_err >= 0.0 ? json_num(row.queue_rel_err).c_str()
                                     : "null",
            row.solve_rel_err >= 0.0 ? json_num(row.solve_rel_err).c_str()
                                     : "null",
            row.solve_speedup >= 0.0 ? json_num(row.solve_speedup).c_str()
                                     : "null",
            row.alloc_total >= 0.0 ? json_num(row.alloc_total).c_str()
                                   : "null",
            row.alloc_per_event >= 0.0 ? json_num(row.alloc_per_event).c_str()
                                       : "null",
            row.crosscheck ? "true" : "false");
      }
    }
  }

  std::string nodes_json;
  for (const int n : sizes)
    nodes_json += strformat(nodes_json.empty() ? "%d" : ", %d", n);
  std::string churn_json;
  for (const double churn : churn_rates) {
    if (!churn_json.empty()) churn_json += ", ";
    churn_json += json_num(churn);
  }
  std::string providers_json;
  for (const auto& pname : provider_names) {
    if (!providers_json.empty()) providers_json += ", ";
    providers_json += "\"" + pname + "\"";
  }
  std::string queues_json;
  if (with_heap) queues_json += "\"heap\"";
  if (with_scan) queues_json += queues_json.empty() ? "\"scan\"" : ", \"scan\"";
  std::string solves_json;
  if (with_serial) solves_json += "\"serial\"";
  if (with_parallel)
    solves_json += solves_json.empty() ? "\"parallel\"" : ", \"parallel\"";

  const std::string json = strformat(
      "{\n  \"bench\": \"engine_scaling\",\n  \"schema_version\": 5,\n"
      "  \"config\": {\"rounds\": %d, \"bytes\": %s, \"seed\": %llu, "
      "\"max_full_nodes\": %ld, \"max_scan_nodes\": %ld, \"nodes\": [%s], "
      "\"churn\": [%s], "
      "\"providers\": [%s], \"queues\": [%s], \"solves\": [%s], "
      "\"threads\": %d},\n  \"results\": [%s\n  ]\n}\n",
      rounds, json_num(bytes).c_str(),
      static_cast<unsigned long long>(seed), max_full, max_scan,
      nodes_json.c_str(), churn_json.c_str(), providers_json.c_str(),
      queues_json.c_str(), solves_json.c_str(),
      with_parallel ? pool_threads : 1, rows.c_str());
  util::write_text_file(out_path, json);
  std::cout << "  [json written to " << out_path << "]\n";

  if (!all_equivalent) {
    std::cerr << "error: engine configurations diverged (full vs "
                 "incremental beyond 1e-9 relative, scan not bit-identical "
                 "to heap, or parallel solve not bit-identical to serial)\n";
    return 1;
  }
  return 0;
}
