// Experiment E7 — paper Fig 9: the Myrinet model evaluated on HPL/Linpack
// (N=20500, ring communication scheme) under RRN, RRP and Random
// schedulings. The paper calls the Myrinet model "globally accurate" here.
#include "hpl_bench.hpp"
#include "models/myrinet.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const auto cluster = topo::ClusterSpec::ibm_eserver325_myrinet(16);
  const models::MyrinetModel model;
  return bench::run_hpl_bench(argc, argv, "Fig 9 - HPL on Myrinet 2000",
                              cluster, model);
}
