// Experiment E5 — paper Fig 7: model accuracy on synthetic graphs — the MK1
// tree and the MK2 complete graph — as measured-vs-predicted communication
// times with E_abs per graph.
//
// The paper reports (Myrinet model): MK1 E_abs = 2.6 %, MK2 E_abs = 9.5 %,
// trees mostly pessimistic, complete graphs pessimistic on Myrinet /
// optimistic on GigE. Message sizes are not printed in the paper; the
// built-in schemes use a uniform 4 MB (see DESIGN.md §2), so absolute T
// columns differ while the error structure is comparable.
//
// This bench drives the eval::Sweep campaign runner (the same grid is
// reproducible as `bwshare_cli sweep --schemes mk1,mk2 --networks
// gige,myrinet --models network --shapes 10x2 --seeds 42`): 2 schemes x
// 2 interconnects, each predicted by its interconnect's own model.
// `--size 8M` rescales the message size (sweep "mk1@8M" syntax);
// `--threads N` sets the pool size (results are identical at any value);
// `--csv [PATH]` writes the per-cell sweep CSV (default
// fig7_synthetic_cells.csv next to the binary).
#include <iostream>

#include "bench_util.hpp"
#include "eval/sweep.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace bwshare;

// Paper Fig 7 E_abs reference values (Myrinet model; the GigE cells are the
// §VI-C discussion, no printed number).
std::string paper_reference(const eval::SweepCell& cell) {
  if (cell.network != "myrinet") return "-";
  if (starts_with(cell.workload, "mk1")) return "2.6";
  if (starts_with(cell.workload, "mk2")) return "9.5";
  return "-";
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"size", "threads", "csv"});
  if (!unknown.empty()) {
    std::cerr << "error: unknown flag --" << unknown.front()
              << " (flags: --size, --threads, --csv)\n";
    return 2;
  }

  print_banner(std::cout,
               "Fig 7 — synthetic graphs MK1 (tree) and MK2 (complete)");

  // Validate --size eagerly so a typo fails loudly, not as 4 errored cells.
  const std::string size = args.get("size", "4M");
  (void)parse_size(size);

  eval::SweepSpec spec;
  spec.schemes = {"mk1@" + size, "mk2@" + size};
  spec.networks = {topo::NetworkTech::kGigabitEthernet,
                   topo::NetworkTech::kMyrinet2000};
  spec.models = {"network"};  // each interconnect predicted by its own model
  spec.shapes = {{10, 2}};    // the seed bench's 10-node clusters
  spec.seeds = {42};          // static schemes; seed only labels the cells

  const eval::Sweep sweep(std::move(spec));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const auto result = sweep.run(threads);

  TextTable table({"graph", "network", "model", "comms", "T_m sum [s]",
                   "T_p sum [s]", "E_abs [%]", "paper [%]"});
  for (const auto& cell : result.cells) {
    BWS_CHECK(cell.ok, "fig7 sweep cell failed: " + cell.error);
    table.add_row({cell.workload, cell.network, cell.model,
                   strformat("%d", cell.units),
                   strformat("%.4f", cell.measured_s),
                   strformat("%.4f", cell.predicted_s),
                   strformat("%.1f", cell.eabs_pct), paper_reference(cell)});
  }
  std::cout << table.render() << "\n";

  std::cout << "  per-axis marginals (mean E_abs over ok cells):\n";
  for (const auto& m : result.marginals) {
    if (m.axis != "workload" && m.axis != "network") continue;
    std::cout << strformat("    %-8s %-8s mean %.1f %%  max %.1f %%\n",
                           m.axis.c_str(), m.value.c_str(), m.mean_eabs_pct,
                           m.max_eabs_pct);
  }

  // Both `--csv` (boolean, bench convention — any get_bool spelling) and
  // `--csv PATH` (the bwshare_cli sweep convention) work.
  const std::string csv_arg = args.get("csv", "");
  if (!csv_arg.empty()) {
    bool enabled = true;
    std::string path = "fig7_synthetic_cells.csv";
    if (csv_arg == "true" || csv_arg == "1" || csv_arg == "yes" ||
        csv_arg == "on") {
      // default path
    } else if (csv_arg == "false" || csv_arg == "0" || csv_arg == "no" ||
               csv_arg == "off") {
      enabled = false;
    } else {
      path = csv_arg;
    }
    if (enabled) {
      util::write_text_file(path, result.to_csv());
      std::cout << "  [sweep cells csv written to " << path << "]\n";
    }
  }
  return 0;
} catch (const bwshare::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
