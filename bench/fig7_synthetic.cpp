// Experiment E5 — paper Fig 7: model accuracy on synthetic graphs — the MK1
// tree and the MK2 complete graph — as measured-vs-predicted communication
// times with E_rel per communication and E_abs per graph.
//
// The paper reports (Myrinet model): MK1 E_abs = 2.6 %, MK2 E_abs = 9.5 %,
// trees mostly pessimistic, complete graphs pessimistic on Myrinet /
// optimistic on GigE. Message sizes are not printed in the paper; we use a
// uniform 4 MB (see DESIGN.md §2), so absolute T columns differ while the
// error structure is comparable.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "graph/schemes.hpp"
#include "models/gige.hpp"
#include "models/myrinet.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

void run_graph(const CliArgs& args, const std::string& name,
               const graph::CommGraph& g, const topo::ClusterSpec& cluster,
               const models::PenaltyModel& model, double paper_eabs) {
  const auto cmp = eval::compare_scheme(g, cluster, model);
  TextTable table({"comm", "arc", "T_m [s]", "T_p [s]", "E_rel [%]"});
  for (graph::CommId i = 0; i < g.size(); ++i) {
    const auto& c = g.comm(i);
    table.add_row({c.label, strformat("%d->%d", c.src, c.dst),
                   strformat("%.4f", cmp.measured[static_cast<size_t>(i)]),
                   strformat("%.4f", cmp.predicted[static_cast<size_t>(i)]),
                   strformat("%+.1f", cmp.erel[static_cast<size_t>(i)])});
  }
  std::cout << "\n  " << name << " (" << model.name() << " model):\n";
  bench::emit(args, name, table);
  std::cout << strformat("  E_abs = %.1f %%   (paper: %.1f %%)\n", cmp.eabs,
                         paper_eabs);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double bytes = parse_size(args.get("size", "4M"));

  print_banner(std::cout,
               "Fig 7 — synthetic graphs MK1 (tree) and MK2 (complete)");

  const auto myri = topo::ClusterSpec::ibm_eserver325_myrinet(10);
  const auto gige = topo::ClusterSpec::ibm_eserver326_gige(10);
  const models::MyrinetModel myrinet_model;
  const models::GigabitEthernetModel gige_model;

  run_graph(args, "fig7_mk1_myrinet", graph::schemes::mk1_tree(bytes), myri,
            myrinet_model, 2.6);
  run_graph(args, "fig7_mk2_myrinet", graph::schemes::mk2_complete(bytes),
            myri, myrinet_model, 9.5);
  // The paper evaluates both models on synthetic graphs (§VI-C discusses the
  // GigE model's optimism on complete graphs); same harness, GigE side:
  run_graph(args, "fig7_mk1_gige", graph::schemes::mk1_tree(bytes), gige,
            gige_model, 2.6);
  run_graph(args, "fig7_mk2_gige", graph::schemes::mk2_complete(bytes), gige,
            gige_model, 9.5);
  return 0;
}
