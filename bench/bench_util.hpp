// Shared helpers for the bench binaries.
#pragma once

#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace bwshare::bench {

/// Print the table; also write `<name>.csv` next to the binary when --csv.
inline void emit(const CliArgs& args, const std::string& name,
                 const TextTable& table) {
  std::cout << table.render() << "\n";
  if (args.get_bool("csv", false)) {
    const std::string path = name + ".csv";
    table.write_csv(path);
    std::cout << "  [csv written to " << path << "]\n";
  }
}

}  // namespace bwshare::bench
