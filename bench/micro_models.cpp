// Micro-benchmark A4 — evaluation cost of each penalty model on graphs of
// growing size (the predictive simulator re-evaluates the model every time
// the in-flight set changes, so this is the simulator's inner loop).
#include <benchmark/benchmark.h>

#include "graph/schemes.hpp"
#include "models/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace bwshare;

graph::CommGraph random_comms(int comms, int nodes, uint64_t seed) {
  graph::CommGraph g;
  Rng rng(seed);
  for (int i = 0; i < comms; ++i) {
    const int src = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
    int dst = static_cast<int>(rng.below(static_cast<uint64_t>(nodes)));
    if (dst == src) dst = (dst + 1) % nodes;
    g.add(strformat("c%d", i), src, dst, 4e6);
  }
  return g;
}

void BM_ModelPenalties(benchmark::State& state, const std::string& name) {
  const int comms = static_cast<int>(state.range(0));
  const auto g = random_comms(comms, comms, 99);
  const auto model = models::make_model(name);
  for (auto _ : state) {
    const auto p = model->penalties(g);
    benchmark::DoNotOptimize(p);
  }
}

void BM_Gige(benchmark::State& state) { BM_ModelPenalties(state, "gige"); }
void BM_Myrinet(benchmark::State& state) {
  BM_ModelPenalties(state, "myrinet");
}
void BM_Infiniband(benchmark::State& state) {
  BM_ModelPenalties(state, "infiniband");
}
void BM_KimLee(benchmark::State& state) { BM_ModelPenalties(state, "kimlee"); }

BENCHMARK(BM_Gige)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Myrinet)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Infiniband)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KimLee)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);

void BM_Fig2Scheme(benchmark::State& state) {
  const auto g = graph::schemes::fig2_scheme(static_cast<int>(state.range(0)));
  const auto model = models::make_model("myrinet");
  for (auto _ : state) {
    const auto p = model->penalties(g);
    benchmark::DoNotOptimize(p);
  }
}

BENCHMARK(BM_Fig2Scheme)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
