// Ablation A3 — the paper's models vs the §II baselines (LogGP-style linear
// model with no sharing; Kim & Lee's max-multiplicity model [7]) on the
// fig-2 schemes and fig-7 graphs, scored by E_abs against the substrate.
#include <iostream>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "graph/schemes.hpp"
#include "models/registry.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);

  print_banner(std::cout, "Ablation - paper models vs SII baselines (E_abs %)");

  struct Case {
    std::string name;
    graph::CommGraph g;
  };
  std::vector<Case> cases;
  for (int s = 2; s <= 6; ++s)
    cases.push_back({strformat("fig2 S%d", s), graph::schemes::fig2_scheme(s)});
  cases.push_back({"mk1 tree", graph::schemes::mk1_tree()});
  cases.push_back({"mk2 complete", graph::schemes::mk2_complete()});

  struct Net {
    topo::ClusterSpec cluster;
    std::string paper_model;
  };
  const std::vector<Net> nets = {
      {topo::ClusterSpec::ibm_eserver326_gige(10), "gige"},
      {topo::ClusterSpec::ibm_eserver325_myrinet(10), "myrinet"},
      {topo::ClusterSpec::bull_novascale_ib(10), "infiniband"},
  };

  for (const auto& net : nets) {
    TextTable table({"scheme", "paper model", "kimlee", "loggp"});
    for (const auto& c : cases) {
      std::vector<std::string> row{c.name};
      for (const auto& model_name :
           {net.paper_model, std::string("kimlee"), std::string("loggp")}) {
        const auto model = models::make_model(model_name);
        const auto cmp = eval::compare_scheme(c.g, net.cluster, *model);
        row.push_back(strformat("%.1f", cmp.eabs));
      }
      table.add_row(row);
    }
    std::cout << "\n  " << net.cluster.name() << " (paper model: "
              << net.paper_model << "):\n";
    bench::emit(args, "abl_baselines_" + net.paper_model, table);
  }
  std::cout << "\n  Expectation (paper SII): the linear LogGP baseline "
               "misses sharing entirely;\n  Kim-Lee over-penalizes "
               "asymmetric conflicts; the paper's models win.\n";
  return 0;
}
