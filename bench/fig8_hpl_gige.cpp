// Experiment E6 — paper Fig 8: the Gigabit Ethernet model evaluated on
// HPL/Linpack (N=20500, ring communication scheme) under the RRN, RRP and
// Random schedulings. The paper reports the GigE model as "a bit less
// accurate than Myrinet" with errors attributed to memory congestion and
// system interference.
#include "hpl_bench.hpp"
#include "models/gige.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const auto cluster = topo::ClusterSpec::ibm_eserver326_gige(16);
  const models::GigabitEthernetModel model;
  return bench::run_hpl_bench(argc, argv,
                              "Fig 8 - HPL on Gigabit Ethernet", cluster,
                              model);
}
