// Ablation A1 — design-choice check: the experiments use the fluid max-min
// substrate as their "measured" side; this bench quantifies how closely the
// packet-level flow-control simulators (TCP+pause, Stop&Go wormhole,
// credit-based) agree with it on the canonical conflicts.
#include <iostream>

#include "bench_util.hpp"
#include "flowsim/fluid_network.hpp"
#include "flowsim/packet.hpp"
#include "graph/schemes.hpp"
#include "stats/descriptive.hpp"
#include "topo/network.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace bwshare;
  const CliArgs args(argc, argv);
  const double bytes = parse_size(args.get("size", "2M"));

  print_banner(std::cout,
               "Ablation - fluid substrate vs packet-level simulators");
  std::cout << "  Message size " << human_bytes(bytes)
            << "; values are penalties P_i.\n";

  struct Case {
    std::string name;
    graph::CommGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"fan-out 2", graph::schemes::outgoing_fan(2, bytes)});
  cases.push_back({"fan-out 3", graph::schemes::outgoing_fan(3, bytes)});
  cases.push_back({"fan-in 3", graph::schemes::incoming_fan(3, bytes)});
  for (int s = 4; s <= 6; ++s)
    cases.push_back({strformat("fig2 S%d", s),
                     graph::schemes::fig2_scheme(s, bytes)});
  cases.push_back({"mk1 tree", graph::schemes::mk1_tree(bytes)});

  for (const auto& cal :
       {topo::gigabit_ethernet_calibration(), topo::myrinet2000_calibration(),
        topo::infiniband_calibration()}) {
    TextTable table({"scheme", "comm", "fluid", "packet", "ratio"});
    stats::Accumulator agreement;
    for (const auto& c : cases) {
      const auto fluid = flowsim::measure_penalties(c.g, cal);
      flowsim::PacketSimConfig cfg;
      cfg.cal = cal;
      const auto packet = flowsim::measure_penalties_packet(c.g, cfg);
      for (graph::CommId i = 0; i < c.g.size(); ++i) {
        const double ratio = packet[static_cast<size_t>(i)] /
                             fluid[static_cast<size_t>(i)];
        agreement.add(ratio);
        table.add_row({c.name, std::string(c.g.label(i)),
                       strformat("%.2f", fluid[static_cast<size_t>(i)]),
                       strformat("%.2f", packet[static_cast<size_t>(i)]),
                       strformat("%.3f", ratio)});
      }
    }
    std::cout << "\n  " << to_string(cal.tech) << ":\n";
    bench::emit(args, "abl_fluid_vs_packet_" + to_string(cal.tech), table);
    std::cout << strformat(
        "  packet/fluid ratio: mean %.3f, min %.3f, max %.3f\n",
        agreement.mean(), agreement.min(), agreement.max());
  }
  return 0;
}
