// Shared harness for the fig-8/fig-9 HPL experiments: run the N=20500 ring
// trace under the three scheduling policies, compare per-task communication
// sums S_m vs S_p and report E_abs(t_i) — the bars-and-error-line layout of
// the paper's figures, as a table.
#pragma once

#include <iostream>

#include "bench_util.hpp"
#include "eval/experiment.hpp"
#include "hpl/hpl_trace.hpp"
#include "models/penalty_model.hpp"
#include "topo/cluster.hpp"
#include "util/strings.hpp"

namespace bwshare::bench {

inline int run_hpl_bench(int argc, char** argv, const std::string& title,
                         const topo::ClusterSpec& cluster,
                         const models::PenaltyModel& model) {
  const CliArgs args(argc, argv);

  hpl::HplParams params;
  params.n = static_cast<int>(args.get_int("n", 20500));
  params.nb = static_cast<int>(args.get_int("nb", 120));
  // One MPI task per core, as HPL is normally run (the paper's nodes are
  // dual-CPU, so 16 nodes carry 32 tasks).
  params.tasks = static_cast<int>(args.get_int("tasks", 32));
  // 0 = the full factorization (~171 panels). The late panels are where the
  // lookahead broadcasts overlap and conflicts appear.
  params.max_panels = static_cast<int>(args.get_int("panels", 0));

  print_banner(std::cout, title);
  std::cout << strformat(
      "  HPL N=%d NB=%d, %d tasks, %d of %d panels, ring broadcast "
      "(task n -> n+1)\n",
      params.n, params.nb, params.tasks, hpl::num_panels(params),
      (params.n + params.nb - 1) / params.nb);

  const auto trace = hpl::make_hpl_trace(params);

  for (const auto policy :
       {sim::SchedulingPolicy::kRoundRobinNode,
        sim::SchedulingPolicy::kRoundRobinProcessor,
        sim::SchedulingPolicy::kRandom}) {
    const auto cmp = eval::compare_application(trace, cluster, policy, model);
    TextTable table({"task", "node", "S_m [s]", "S_p [s]", "E_abs [%]"});
    for (size_t t = 0; t < cmp.tasks.size(); ++t) {
      const auto& tc = cmp.tasks[t];
      table.add_row({strformat("%zu", t),
                     strformat("%d", cmp.placement.node_of(static_cast<int>(t))),
                     strformat("%.3f", tc.sum_measured),
                     strformat("%.3f", tc.sum_predicted),
                     strformat("%.1f", tc.eabs)});
    }
    std::cout << "\n  Scheduling " << to_string(policy) << ":\n";
    emit(args, title + "_" + to_string(policy), table);
    std::cout << strformat(
        "  mean E_abs %.1f %%; makespan measured %s / predicted %s\n",
        cmp.mean_eabs, human_seconds(cmp.measured_makespan).c_str(),
        human_seconds(cmp.predicted_makespan).c_str());
  }
  return 0;
}

}  // namespace bwshare::bench
